package arrival

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"skybyte/internal/mem"
	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/trace"
	"skybyte/internal/workloads"
)

// SpecFormatVersion names the declarative arrival-spec format. It
// appears as the required "format" field of every spec file and is
// folded into each spec's fingerprint, so a format change can never
// silently reinterpret an old file.
const SpecFormatVersion = 1

// DefaultReqInstr is the request size (instructions) a cohort gets
// when its spec leaves req_instr unset: roughly one YCSB-style
// transaction's worth of work.
const DefaultReqInstr = 2000

// Spec is one open-loop traffic description: a named set of client
// cohorts. Like workload Defs and tenant Mixes, specs are data —
// format-versioned, canonically fingerprinted, resolvable by name —
// and their source identity (folding every member workload/mix)
// reaches the runner key, so the persistent result store re-keys the
// moment a spec or anything it references changes, and only then.
type Spec struct {
	// Format must equal SpecFormatVersion.
	Format int `json:"format"`
	// Name is the spec's registry name (same character set as workload
	// names).
	Name string `json:"name"`
	// Cohorts lists the client populations in declaration order.
	Cohorts []Cohort `json:"cohorts"`
}

// Cohort is one client population: threads replaying a workload (or a
// whole tenant mix) as paced open-loop requests of one SLO class.
type Cohort struct {
	// Name labels the cohort (defaults to its workload/mix name).
	Name string `json:"name,omitempty"`
	// Workload names the workload the cohort's threads replay; exactly
	// one of Workload and Mix must be set. Resolution happens at run
	// time, so a spec may reference workloads registered after it.
	Workload string `json:"workload,omitempty"`
	// Mix instead attaches a whole tenant mix: each mix tenant becomes
	// its own tenant group (named cohort/tenant) with the mix's thread
	// layout, all sharing this cohort's process and SLO class. Threads
	// must be left unset — the mix declares its own.
	Mix string `json:"mix,omitempty"`
	// Threads is the cohort's software thread count (workload cohorts
	// only).
	Threads int `json:"threads,omitempty"`
	// Class names the cohort's SLO class (defaults to the cohort name).
	// Cohorts sharing a class report as one population.
	Class string `json:"class,omitempty"`
	// ReqInstr is the request size in instructions (default
	// DefaultReqInstr): a thread's trace is sliced into requests of
	// this many instructions, each released at a sampled arrival.
	ReqInstr uint64 `json:"req_instr,omitempty"`
	// Process is the interarrival distribution, per thread.
	Process Process `json:"process"`
	// Windows, when set, cycle a time-varying intensity schedule over
	// the process (bursts, diurnal shifts, phased build/query loads).
	Windows []Window `json:"windows,omitempty"`
}

// name is the cohort's effective label.
func (c Cohort) name() string {
	if c.Name != "" {
		return c.Name
	}
	if c.Workload != "" {
		return c.Workload
	}
	return c.Mix
}

// class is the cohort's effective SLO class.
func (c Cohort) class() string {
	if c.Class != "" {
		return c.Class
	}
	return c.name()
}

// reqInstr is the cohort's effective request size.
func (c Cohort) reqInstr() uint64 {
	if c.ReqInstr == 0 {
		return DefaultReqInstr
	}
	return c.ReqInstr
}

// normalized returns a copy with every defaulted field made explicit,
// so two specs that mean the same thing fingerprint identically.
func (sp Spec) normalized() Spec {
	sp.Cohorts = append([]Cohort(nil), sp.Cohorts...)
	for i := range sp.Cohorts {
		c := &sp.Cohorts[i]
		c.Name = c.name()
		c.Class = c.class()
		c.ReqInstr = c.reqInstr()
		if c.Process.Dist == DistGamma || c.Process.Dist == DistWeibull {
			c.Process.Shape = c.Process.shape()
		}
		c.Windows = append([]Window(nil), c.Windows...)
		for j := range c.Windows {
			c.Windows[j].EndScale = c.Windows[j].endScale()
		}
	}
	return sp
}

// Validate checks the spec against the format's contract and returns
// the first violation, phrased for a human editing a file. Workload
// and mix names are checked for well-formedness only — they resolve
// against the live registries at run time (Resolve checks that).
func (sp Spec) Validate() error {
	if sp.Format != SpecFormatVersion {
		return fmt.Errorf("arrival: %q: format %d, this build reads format %d", sp.Name, sp.Format, SpecFormatVersion)
	}
	if err := workloads.ValidateName(sp.Name); err != nil {
		return fmt.Errorf("arrival: spec %w", err)
	}
	if len(sp.Cohorts) == 0 {
		return fmt.Errorf("arrival: %q: at least one cohort required", sp.Name)
	}
	seen := map[string]bool{}
	for i, c := range sp.Cohorts {
		at := fmt.Sprintf("arrival: %q: cohort %d", sp.Name, i)
		switch {
		case c.Workload == "" && c.Mix == "":
			return fmt.Errorf("%s: needs a workload or a mix", at)
		case c.Workload != "" && c.Mix != "":
			return fmt.Errorf("%s: workload %q and mix %q are mutually exclusive", at, c.Workload, c.Mix)
		case c.Workload != "":
			if err := workloads.ValidateName(c.Workload); err != nil {
				return fmt.Errorf("%s: workload %w", at, err)
			}
			if c.Threads <= 0 {
				return fmt.Errorf("%s (%s): threads must be positive", at, c.name())
			}
		default:
			if err := workloads.ValidateName(c.Mix); err != nil {
				return fmt.Errorf("%s: mix %w", at, err)
			}
			if c.Threads != 0 {
				return fmt.Errorf("%s (%s): a mix cohort's thread layout comes from the mix; leave threads unset", at, c.name())
			}
		}
		if err := workloads.ValidateName(c.name()); err != nil {
			return fmt.Errorf("%s: %w", at, err)
		}
		if seen[c.name()] {
			return fmt.Errorf("%s: duplicate cohort name %q (set distinct \"name\" fields when two cohorts share a workload)", at, c.name())
		}
		seen[c.name()] = true
		if err := workloads.ValidateName(c.class()); err != nil {
			return fmt.Errorf("%s: class %w", at, err)
		}
		at = fmt.Sprintf("%s (%s)", at, c.name())
		if err := c.Process.validate(at); err != nil {
			return err
		}
		if err := validateWindows(c.Windows, at); err != nil {
			return err
		}
	}
	return nil
}

// Resolve checks that every cohort's workload or mix resolves against
// the live registries — the CLIs call it before anything simulates, so
// a typo'd member name fails upfront with the full valid set, exactly
// like the -workload/-mix axes.
func (sp Spec) Resolve() error {
	for _, c := range sp.Cohorts {
		if c.Mix != "" {
			if _, err := tenant.ByName(c.Mix); err != nil {
				return fmt.Errorf("arrival: %q: cohort %q: %w", sp.Name, c.name(), err)
			}
			continue
		}
		if _, err := workloads.ByName(c.Workload); err != nil {
			return fmt.Errorf("arrival: %q: cohort %q: %w", sp.Name, c.name(), err)
		}
	}
	return nil
}

// TotalThreads returns the spec's combined software thread count. Mix
// cohorts need their mix resolvable to know its layout.
func (sp Spec) TotalThreads() (int, error) {
	n := 0
	for _, c := range sp.Cohorts {
		if c.Mix != "" {
			m, err := tenant.ByName(c.Mix)
			if err != nil {
				return 0, fmt.Errorf("arrival: %q: cohort %q: %w", sp.Name, c.name(), err)
			}
			n += m.TotalThreads()
			continue
		}
		n += c.Threads
	}
	return n, nil
}

// Classes returns the spec's SLO classes in first-appearance order,
// each with the analytic offered rate of its cohorts at the given
// intensity scale: threads × per-thread rate × schedule mean scale.
func (sp Spec) Classes(rateScale float64) ([]system.SLOClass, error) {
	if rateScale <= 0 {
		rateScale = 1
	}
	var classes []system.SLOClass
	index := map[string]int{}
	for _, c := range sp.Cohorts {
		threads := c.Threads
		if c.Mix != "" {
			m, err := tenant.ByName(c.Mix)
			if err != nil {
				return nil, fmt.Errorf("arrival: %q: cohort %q: %w", sp.Name, c.name(), err)
			}
			threads = m.TotalThreads()
		}
		offered := float64(threads) * c.Process.Rate * MeanScale(c.Windows) * rateScale
		name := c.class()
		if i, ok := index[name]; ok {
			classes[i].OfferedRPS += offered
			continue
		}
		index[name] = len(classes)
		classes = append(classes, system.SLOClass{Name: name, OfferedRPS: offered})
	}
	return classes, nil
}

// Fingerprint returns the spec's stable content identity: a hex digest
// of its normalized canonical JSON, prefixed with the format version.
// It covers the spec *shape* only; SourceID additionally folds the
// member workloads'/mixes' source identities.
func (sp Spec) Fingerprint() string {
	b, err := json.Marshal(sp.normalized())
	if err != nil {
		panic(fmt.Sprintf("arrival: spec not fingerprintable: %v", err))
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("fmt%d:%s", SpecFormatVersion, hex.EncodeToString(sum[:]))
}

// SourceID returns the full source identity of an arrival run: the
// spec's own fingerprint plus each member workload's or mix's
// SourceID. The runner folds it into the spec key, so editing the spec
// file, a member mix, or a member workload definition re-keys exactly
// the affected store entries. An unresolvable member contributes an
// "unresolved" marker (the run itself errors before simulating).
func (sp Spec) SourceID() string {
	var b strings.Builder
	fmt.Fprintf(&b, "arrival:%s", sp.Fingerprint())
	for _, c := range sp.Cohorts {
		if c.Mix != "" {
			src := "unresolved"
			if m, err := tenant.ByName(c.Mix); err == nil {
				src = m.SourceID()
			}
			fmt.Fprintf(&b, "|mix:%s=%s", c.Mix, src)
			continue
		}
		src := "unresolved"
		if w, err := workloads.ByName(c.Workload); err == nil {
			src = w.SourceID()
		}
		fmt.Fprintf(&b, "|%s=%s", c.Workload, src)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return "arrival:" + hex.EncodeToString(sum[:])
}

// gateSeed derives the arrival-sampler stream seed for one global
// thread index: a distinct mixing from the workload-stream seeds, so
// arrival draws never correlate with address draws.
func gateSeed(seed uint64, thread int) uint64 {
	return seed*0xC2B2AE3D + uint64(thread)*0x165667B1 + 5
}

// Apply resolves the spec against the workload and mix registries and
// populates sys as an open-loop run: each cohort's threads become
// tenant groups over disjoint arenas (mix cohorts expand to one group
// per mix tenant, exactly as Mix.Apply lays them out), SLO classes are
// declared with their analytic offered rates, and every thread gets an
// arrival gate with its own deterministic sampler stream. rateScale
// multiplies every cohort's rate — the campaign's intensity axis; 0
// means 1. The instruction budget splits evenly across all threads;
// pacing comes from the arrival processes, not the budget.
func (sp Spec) Apply(sys *system.System, totalInstr, seed uint64, rateScale float64) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	n := sp.normalized()

	// Flatten cohorts into tenant groups.
	type group struct {
		name    string
		w       workloads.Spec
		threads int
		cohort  int // index into n.Cohorts
	}
	var groups []group
	for i, c := range n.Cohorts {
		if c.Mix != "" {
			m, err := tenant.ByName(c.Mix)
			if err != nil {
				return fmt.Errorf("arrival: %q: cohort %q: %w", n.Name, c.Name, err)
			}
			for _, t := range m.Tenants {
				w, err := workloads.ByName(t.Workload)
				if err != nil {
					return fmt.Errorf("arrival: %q: cohort %q: %w", n.Name, c.Name, err)
				}
				tn := t.Name
				if tn == "" {
					tn = t.Workload
				}
				groups = append(groups, group{name: c.Name + "/" + tn, w: w, threads: t.Threads, cohort: i})
			}
			continue
		}
		w, err := workloads.ByName(c.Workload)
		if err != nil {
			return fmt.Errorf("arrival: %q: cohort %q: %w", n.Name, c.Name, err)
		}
		groups = append(groups, group{name: c.Name, w: w, threads: c.Threads, cohort: i})
	}

	var totalPages uint64
	totalThreads := 0
	infos := make([]system.TenantInfo, len(groups))
	for i, g := range groups {
		infos[i] = system.TenantInfo{Name: g.name, Workload: g.w.Name, Threads: g.threads}
		totalPages += g.w.FootprintPages
		totalThreads += g.threads
	}
	if logical := sys.FTL().LogicalPages(); totalPages > logical {
		return fmt.Errorf("arrival: %q: combined footprint %d pages exceeds the device's %d logical pages (shrink the spec or grow the machine)",
			n.Name, totalPages, logical)
	}
	classes, err := n.Classes(rateScale)
	if err != nil {
		return err
	}
	classIdx := map[string]int{}
	for i, cl := range classes {
		classIdx[cl.Name] = i
	}

	sys.DeclareTenants(infos)
	sys.DeclareSLOClasses(classes)
	per := totalInstr / uint64(totalThreads)
	var base uint64 // cumulative arena offset, in pages
	thread := 0
	for gi, g := range groups {
		c := n.Cohorts[g.cohort]
		delta := mem.Addr(base) * mem.PageBytes
		for k := 0; k < g.threads; k++ {
			t := sys.AddThreadFor(gi, &trace.Offset{Src: g.w.Stream(k, seed), Delta: delta}, per)
			gen := NewGen(c.Process, c.Windows, rateScale, gateSeed(seed, thread))
			sys.AttachGate(t, classIdx[c.Class], gen, c.ReqInstr)
			thread++
		}
		base += g.w.FootprintPages
	}
	return nil
}

// --- registry ---

// registry holds every spec beyond the built-ins, in registration
// order, mirroring the workload registry's contract: register before
// building runners or harnesses; re-registering a name replaces it
// (the file-editing loop); built-in names are reserved.
var registry = struct {
	sync.Mutex
	specs []Spec
	index map[string]int
}{index: map[string]int{}}

// builtinSpecs caches the code-defined specs.
var builtinSpecs = sync.OnceValue(func() []Spec {
	return []Spec{openSteady(), openBurst()}
})

// Builtins returns the code-defined arrival specs: the steady
// two-class population figopen sweeps, and a bursty time-varying
// schedule. The returned slice is shared — do not mutate.
func Builtins() []Spec {
	return builtinSpecs()
}

// openSteady is figopen's default population: a latency-sensitive
// zipfian point-lookup cohort against a burstier transactional batch
// cohort (gamma k=0.25 gives CV-2 interarrival bursts). Threads
// oversubscribe the 8 cores so the context-switch variants operate as
// designed, and base rates are calibrated against the measured
// saturated capacities (Base-CSSD ≈ 25k rps, SkyByte-Full ≈ 33k rps on
// the latency class under ScaledConfig): intensity scale 1 sits below
// every variant's knee, scale 2 lands between Base-CSSD's and
// SkyByte-Full's, and scale 4 is past both.
func openSteady() Spec {
	return Spec{
		Format: SpecFormatVersion,
		Name:   "open-steady",
		Cohorts: []Cohort{
			{Name: "point", Workload: "ycsb", Threads: 12, Class: "latency",
				Process: Process{Dist: DistPoisson, Rate: 1200}},
			{Name: "batch", Workload: "tpcc", Threads: 6, Class: "batch",
				Process: Process{Dist: DistGamma, Rate: 600, Shape: 0.25}},
		},
	}
}

// openBurst drives one cohort through a cyclic burst schedule: a quiet
// baseline, a linear ramp into a 3x peak, and a decay back — the
// diurnal-shift shape, compressed to simulation scale.
func openBurst() Spec {
	return Spec{
		Format: SpecFormatVersion,
		Name:   "open-burst",
		Cohorts: []Cohort{
			{Name: "burst", Workload: "ycsb", Threads: 8, Class: "burst",
				Process: Process{Dist: DistPoisson, Rate: 800},
				Windows: []Window{
					{DurUS: 40, Scale: 1},
					{DurUS: 20, Scale: 1, EndScale: 3},
					{DurUS: 20, Scale: 3},
					{DurUS: 20, Scale: 3, EndScale: 1},
				}},
		},
	}
}

func builtinByName(name string) (Spec, bool) {
	for _, sp := range Builtins() {
		if sp.Name == name {
			return sp, true
		}
	}
	return Spec{}, false
}

// Register adds a spec to the registry, making it resolvable by name
// everywhere a built-in spec is — ByName, figopen's spec set, the
// CLIs' -arrival flags. The spec must validate; built-in names are
// reserved; re-registering a registered name replaces it.
func Register(sp Spec) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	if _, ok := builtinByName(sp.Name); ok {
		return fmt.Errorf("arrival: %q is a built-in arrival spec and cannot be replaced", sp.Name)
	}
	n := sp.normalized()
	registry.Lock()
	defer registry.Unlock()
	if i, ok := registry.index[n.Name]; ok {
		registry.specs[i] = n
		return nil
	}
	registry.index[n.Name] = len(registry.specs)
	registry.specs = append(registry.specs, n)
	return nil
}

// Registered returns the registered (non-built-in) specs in
// registration order.
func Registered() []Spec {
	registry.Lock()
	defer registry.Unlock()
	return append([]Spec(nil), registry.specs...)
}

// resetRegistry clears registrations (tests only).
func resetRegistry() {
	registry.Lock()
	defer registry.Unlock()
	registry.specs = nil
	registry.index = map[string]int{}
}

// Names returns every resolvable spec name: built-ins first, then
// registered specs in registration order.
func Names() []string {
	var out []string
	for _, sp := range Builtins() {
		out = append(out, sp.Name)
	}
	for _, sp := range Registered() {
		out = append(out, sp.Name)
	}
	return out
}

// ByName resolves any known arrival spec — built-in or registered.
// Unknown names error with the full valid list.
func ByName(name string) (Spec, error) {
	if sp, ok := builtinByName(name); ok {
		return sp, nil
	}
	registry.Lock()
	i, ok := registry.index[name]
	var sp Spec
	if ok {
		sp = registry.specs[i]
	}
	registry.Unlock()
	if ok {
		return sp, nil
	}
	return Spec{}, fmt.Errorf("arrival: unknown arrival spec %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// FromFile loads a spec from a versioned JSON file (WORKLOADS.md
// documents the schema). Unknown fields are rejected so a typo fails
// loudly instead of silently meaning "default". The returned Spec is
// validated but not registered; RegisterFile also makes it resolvable
// by name.
func FromFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("arrival: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("arrival: %s: not a valid arrival spec: %w", path, err)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, fmt.Errorf("arrival: %s: %w", path, err)
	}
	return sp.normalized(), nil
}

// RegisterFile loads a spec from path (FromFile) and registers it, so
// campaigns and CLIs can select it by name like a built-in.
func RegisterFile(path string) (Spec, error) {
	sp, err := FromFile(path)
	if err != nil {
		return Spec{}, err
	}
	if err := Register(sp); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// RegistryFingerprint digests the full resolvable spec set — every
// name mapped to its SourceID, sorted. Campaign-level external cache
// keys (skybyte.CampaignFingerprint) fold it in next to the workload
// and mix registry fingerprints, so a CI cache key rotates when any
// arrival spec — or anything one references — changes.
func RegistryFingerprint() string {
	var lines []string
	for _, sp := range Builtins() {
		lines = append(lines, sp.Name+"="+sp.SourceID())
	}
	for _, sp := range Registered() {
		lines = append(lines, sp.Name+"="+sp.SourceID())
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte("skybyte-arrivals|" + strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:])
}
