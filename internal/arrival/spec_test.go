package arrival

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/workloads"
)

func validSpec() Spec {
	return Spec{
		Format: SpecFormatVersion,
		Name:   "test-arr",
		Cohorts: []Cohort{
			{Workload: "bc", Threads: 2, Class: "fast",
				Process: Process{Dist: DistPoisson, Rate: 1000}},
			{Name: "slow", Workload: "srad", Threads: 1,
				Process: Process{Dist: DistGamma, Rate: 500, Shape: 4}},
		},
	}
}

func TestValidateRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"bad format", func(s *Spec) { s.Format = 99 }, "format"},
		{"no name", func(s *Spec) { s.Name = "" }, "name"},
		{"bad name", func(s *Spec) { s.Name = "no spaces" }, "name"},
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }, "at least one cohort"},
		{"no source", func(s *Spec) { s.Cohorts[0].Workload = "" }, "needs a workload or a mix"},
		{"both sources", func(s *Spec) { s.Cohorts[0].Mix = "m" }, "mutually exclusive"},
		{"zero threads", func(s *Spec) { s.Cohorts[0].Threads = 0 }, "threads must be positive"},
		{"mix with threads", func(s *Spec) {
			s.Cohorts[0].Workload = ""
			s.Cohorts[0].Name = "m"
			s.Cohorts[0].Mix = "some-mix"
		}, "leave threads unset"},
		{"duplicate names", func(s *Spec) { s.Cohorts[1].Name = "bc" }, "duplicate cohort name"},
		{"bad class", func(s *Spec) { s.Cohorts[0].Class = "no spaces" }, "class"},
		{"bad process", func(s *Spec) { s.Cohorts[0].Process.Rate = 0 }, "rate"},
		{"bad dist", func(s *Spec) { s.Cohorts[0].Process.Dist = "cauchy" }, "unknown dist"},
		{"bad window", func(s *Spec) {
			s.Cohorts[0].Windows = []Window{{DurUS: 0, Scale: 1}}
		}, "dur_us"},
		{"silent schedule", func(s *Spec) {
			s.Cohorts[0].Windows = []Window{{DurUS: 10, Scale: 0}}
		}, "silent"},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// Two cohorts may share a workload when given distinct names, and
	// may share an SLO class freely.
	s := validSpec()
	s.Cohorts[1].Workload = "bc"
	s.Cohorts[1].Class = "fast"
	if err := s.Validate(); err != nil {
		t.Fatalf("shared workload with distinct names rejected: %v", err)
	}
}

// TestNormalizationReachesFingerprint: a spec with defaults spelled
// out fingerprints identically to one that omits them, and any
// semantic edit changes the fingerprint.
func TestNormalizationReachesFingerprint(t *testing.T) {
	defaulted := validSpec()
	explicit := validSpec()
	explicit.Cohorts[0].Name = "bc"    // default: workload name
	explicit.Cohorts[1].Class = "slow" // default: cohort name
	explicit.Cohorts[0].ReqInstr = DefaultReqInstr
	explicit.Cohorts[1].ReqInstr = DefaultReqInstr
	if explicit.Fingerprint() != defaulted.Fingerprint() {
		t.Fatal("equivalent specs fingerprint differently")
	}
	for name, mut := range map[string]func(*Spec){
		"rate":     func(s *Spec) { s.Cohorts[0].Process.Rate = 1001 },
		"threads":  func(s *Spec) { s.Cohorts[0].Threads = 3 },
		"reqinstr": func(s *Spec) { s.Cohorts[0].ReqInstr = 4000 },
		"windows":  func(s *Spec) { s.Cohorts[0].Windows = []Window{{DurUS: 10, Scale: 2}} },
	} {
		changed := validSpec()
		mut(&changed)
		if changed.Fingerprint() == defaulted.Fingerprint() {
			t.Errorf("%s edit did not change the fingerprint", name)
		}
	}
}

func TestResolveReportsUnknownMembersWithValidSet(t *testing.T) {
	if err := validSpec().Resolve(); err != nil {
		t.Fatalf("resolvable spec rejected: %v", err)
	}
	s := validSpec()
	s.Cohorts[0].Workload = "no-such-workload"
	err := s.Resolve()
	if err == nil || !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("unknown workload accepted (err=%v)", err)
	}
	if !strings.Contains(err.Error(), "valid") {
		t.Fatalf("error does not list the valid set: %v", err)
	}
	m := validSpec()
	m.Cohorts[0] = Cohort{Name: "mm", Mix: "no-such-mix",
		Process: Process{Dist: DistPoisson, Rate: 100}}
	err = m.Resolve()
	if err == nil || !strings.Contains(err.Error(), "no-such-mix") || !strings.Contains(err.Error(), "valid") {
		t.Fatalf("unknown mix accepted or valid set missing (err=%v)", err)
	}
}

func TestTotalThreadsAndClasses(t *testing.T) {
	defer resetRegistry()
	s := validSpec()
	n, err := s.TotalThreads()
	if err != nil || n != 3 {
		t.Fatalf("TotalThreads = %d, %v; want 3", n, err)
	}

	// A mix cohort contributes the mix's own thread layout.
	mx := tenant.Mix{
		Format: tenant.MixFormatVersion,
		Name:   "arr-test-mix",
		Tenants: []tenant.TenantDef{
			{Name: "a", Workload: "bc", Threads: 2},
			{Name: "b", Workload: "srad", Threads: 3},
		},
	}
	if err := tenant.Register(mx); err != nil {
		t.Fatal(err)
	}
	s.Cohorts = append(s.Cohorts, Cohort{Name: "mixed", Mix: "arr-test-mix",
		Class: "fast", Process: Process{Dist: DistPoisson, Rate: 200}})
	if n, err = s.TotalThreads(); err != nil || n != 8 {
		t.Fatalf("TotalThreads with mix = %d, %v; want 8", n, err)
	}

	// Classes come back in first-appearance order; cohorts sharing a
	// class sum their offered rates. Offered = threads x rate x
	// schedule mean x rateScale.
	classes, err := s.Classes(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || classes[0].Name != "fast" || classes[1].Name != "slow" {
		t.Fatalf("classes = %+v", classes)
	}
	// fast: bc 2x1000 + mix 5x200 = 3000, x2 scale = 6000.
	if got := classes[0].OfferedRPS; math.Abs(got-6000) > 1e-9 {
		t.Fatalf("fast offered = %g, want 6000", got)
	}
	// slow: srad 1x500 x2 = 1000.
	if got := classes[1].OfferedRPS; math.Abs(got-1000) > 1e-9 {
		t.Fatalf("slow offered = %g, want 1000", got)
	}

	// A time-varying schedule folds its mean scale into the offer.
	w := validSpec()
	w.Cohorts[0].Windows = []Window{{DurUS: 10, Scale: 1}, {DurUS: 10, Scale: 3}}
	classes, err = w.Classes(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := classes[0].OfferedRPS; math.Abs(got-4000) > 1e-9 {
		t.Fatalf("scheduled offered = %g, want 2x1000x2 = 4000", got)
	}
}

// TestSourceIDFoldsMembers: the source identity must change when a
// member workload changes, not just when the spec text does — that is
// what re-keys stale store entries after a workload-file edit.
func TestSourceIDFoldsMembers(t *testing.T) {
	s := validSpec()
	s.Cohorts[0].Workload = "arr-src-w" // resolved at run time
	unresolved := s.SourceID()
	if !strings.HasPrefix(unresolved, "arrival:") {
		t.Fatalf("source id = %q", unresolved)
	}
	if s.SourceID() != unresolved {
		t.Fatal("source id unstable across calls")
	}

	def := workloads.Def{
		Format:         workloads.DefFormatVersion,
		Name:           "arr-src-w",
		FootprintPages: 64,
		Regions:        []workloads.RegionDef{{Name: "r", Start: 0, Size: 1}},
		Phases: []workloads.PhaseDef{{Ops: []workloads.OpDef{
			{Op: "load", Region: "r"},
			{Op: "compute", Min: 4},
		}}},
	}
	if err := workloads.Register(def.MustSpec()); err != nil {
		t.Fatal(err)
	}
	v1 := s.SourceID()
	if v1 == unresolved {
		t.Fatal("resolving a member did not change the source id")
	}

	// Edit the member definition (the spec text is untouched): the
	// spec fingerprint must hold still while the source id moves.
	fp := s.Fingerprint()
	def.FootprintPages++
	if err := workloads.Register(def.MustSpec()); err != nil {
		t.Fatal(err)
	}
	if s.SourceID() == v1 {
		t.Fatal("member workload edit did not change the source id")
	}
	if s.Fingerprint() != fp {
		t.Fatal("member workload edit changed the spec's own fingerprint")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	defer resetRegistry()
	names := Names()
	if len(names) < 2 || names[0] != "open-steady" || names[1] != "open-burst" {
		t.Fatalf("builtin names = %v", names)
	}
	if _, err := ByName("open-steady"); err != nil {
		t.Fatalf("builtin not resolvable: %v", err)
	}
	_, err := ByName("nope")
	if err == nil || !strings.Contains(err.Error(), "valid:") ||
		!strings.Contains(err.Error(), "open-steady") {
		t.Fatalf("unknown-name error does not list the valid set: %v", err)
	}

	s := validSpec()
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	got, err := ByName("test-arr")
	if err != nil || got.Fingerprint() != s.Fingerprint() {
		t.Fatalf("registered spec not returned intact: %v", err)
	}

	// Re-registering a name replaces it (the file-editing loop).
	s2 := validSpec()
	s2.Cohorts[0].Process.Rate = 2000
	if err := Register(s2); err != nil {
		t.Fatal(err)
	}
	got, _ = ByName("test-arr")
	if got.Cohorts[0].Process.Rate != 2000 {
		t.Fatal("re-registration did not replace the spec")
	}

	// Built-in names are reserved.
	b := validSpec()
	b.Name = "open-steady"
	if err := Register(b); err == nil || !strings.Contains(err.Error(), "built-in") {
		t.Fatalf("builtin shadowing accepted (err=%v)", err)
	}

	// Malformed specs never enter the registry.
	bad := validSpec()
	bad.Cohorts = nil
	if err := Register(bad); err == nil {
		t.Fatal("invalid spec registered")
	}

	// The registry fingerprint moves with registration state.
	before := RegistryFingerprint()
	resetRegistry()
	if RegistryFingerprint() == before {
		t.Fatal("registry fingerprint ignores registered specs")
	}
}

func TestFromFileAndRegisterFile(t *testing.T) {
	defer resetRegistry()
	dir := t.TempDir()
	good := filepath.Join(dir, "arr.json")
	if err := os.WriteFile(good, []byte(`{
		"format": 1,
		"name": "file-arr",
		"cohorts": [
			{"workload": "bc", "threads": 2, "class": "gold",
			 "process": {"dist": "poisson", "rate": 1500}},
			{"workload": "srad", "threads": 1,
			 "process": {"dist": "weibull", "rate": 700, "shape": 0.7},
			 "windows": [{"dur_us": 20, "scale": 1}, {"dur_us": 10, "scale": 1, "end_scale": 2}]}
		]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := FromFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "file-arr" || len(sp.Cohorts) != 2 ||
		sp.Cohorts[1].Process.Dist != DistWeibull || len(sp.Cohorts[1].Windows) != 2 {
		t.Fatalf("loaded spec mangled: %+v", sp)
	}

	if _, err := RegisterFile(good); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("file-arr"); err != nil {
		t.Fatalf("RegisterFile did not register: %v", err)
	}

	// Unknown fields are typos, not extensions.
	typo := filepath.Join(dir, "typo.json")
	os.WriteFile(typo, []byte(`{"format":1,"name":"t","cohorts":[{"workload":"bc","treads":2,"process":{"dist":"poisson","rate":1}}]}`), 0o644)
	if _, err := FromFile(typo); err == nil || !strings.Contains(err.Error(), "treads") {
		t.Fatalf("unknown field accepted (err=%v)", err)
	}

	// Invalid contents are rejected with the validation message.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"format":1,"name":"b","cohorts":[]}`), 0o644)
	if _, err := FromFile(bad); err == nil || !strings.Contains(err.Error(), "at least one cohort") {
		t.Fatalf("invalid spec loaded (err=%v)", err)
	}
	if _, err := FromFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestGateSeedsAreDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for seed := uint64(1); seed <= 3; seed++ {
		for thread := 0; thread < 64; thread++ {
			s := gateSeed(seed, thread)
			if seen[s] {
				t.Fatalf("gateSeed collision at seed %d thread %d", seed, thread)
			}
			seen[s] = true
		}
	}
}

// --- Apply integration: real system runs ---

func smallSpec() Spec {
	return Spec{
		Format: SpecFormatVersion,
		Name:   "small-arr",
		Cohorts: []Cohort{
			{Workload: "bc", Threads: 2, Class: "gold", ReqInstr: 1500,
				Process: Process{Dist: DistPoisson, Rate: 4000}},
			{Workload: "srad", Threads: 1, Class: "batch",
				Process: Process{Dist: DistGamma, Rate: 2000, Shape: 0.5}},
		},
	}
}

func runSmall(t *testing.T, variant system.Variant, totalInstr, seed uint64) *system.Result {
	t.Helper()
	cfg := system.ScaledConfig().WithVariant(variant)
	sys := system.New(cfg)
	if err := smallSpec().Apply(sys, totalInstr, seed, 1); err != nil {
		t.Fatal(err)
	}
	return sys.Run()
}

// TestOpenLoopClassesSumToTotal: the per-class OpenStats are exact
// splits — merging them reproduces the all-classes total bit for bit,
// and the bookkeeping invariants (admitted >= completed, monotone
// completion span) hold.
func TestOpenLoopClassesSumToTotal(t *testing.T) {
	res := runSmall(t, system.SkyByteFull, 36_000, 11)
	ol := res.OpenLoop
	if ol == nil {
		t.Fatal("arrival run produced no OpenLoop section")
	}
	if len(ol.Classes) != 2 || ol.Classes[0].Name != "gold" || ol.Classes[1].Name != "batch" {
		t.Fatalf("classes = %+v", ol.Classes)
	}
	if ol.Total.Completed == 0 {
		t.Fatal("no completed requests")
	}
	var merged = ol.Classes[0].Stats
	merged.Merge(&ol.Classes[1].Stats)
	if !reflect.DeepEqual(merged, ol.Total) {
		t.Fatalf("class splits do not merge to the total:\nmerged %+v\ntotal  %+v", merged, ol.Total)
	}
	for _, cl := range ol.Classes {
		if cl.Stats.Completed > cl.Stats.Admitted {
			t.Fatalf("class %s: completed %d > admitted %d", cl.Name, cl.Stats.Completed, cl.Stats.Admitted)
		}
		if cl.Stats.Completed > 1 && cl.Stats.LastDone <= cl.Stats.FirstDone {
			t.Fatalf("class %s: degenerate completion span", cl.Name)
		}
		if cl.OfferedRPS <= 0 {
			t.Fatalf("class %s: offered rate missing", cl.Name)
		}
		if cl.Stats.Latency.Mean() < cl.Stats.QueueDelay.Mean() {
			t.Fatalf("class %s: sojourn mean below queue-delay mean", cl.Name)
		}
	}
	// Tenant accounting coexists with open-loop accounting.
	if len(res.Tenants) != 2 {
		t.Fatalf("tenant groups = %d, want 2", len(res.Tenants))
	}
}

// TestApplyDeterminism: the same spec, budget, and seed produce
// byte-identical encoded results across independent runs.
func TestApplyDeterminism(t *testing.T) {
	a := runSmall(t, system.BaseCSSD, 24_000, 7)
	b := runSmall(t, system.BaseCSSD, 24_000, 7)
	ea, err := system.EncodeResult(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := system.EncodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("identical arrival runs encoded differently")
	}
	// A different seed moves the arrival draws, hence the measurements.
	c := runSmall(t, system.BaseCSSD, 24_000, 8)
	ec, _ := system.EncodeResult(c)
	if bytes.Equal(ea, ec) {
		t.Fatal("seed change did not move the result")
	}
}

// TestApplyMixCohort: a mix cohort expands into one tenant group per
// mix tenant, named cohort/tenant, all reporting under the cohort's
// SLO class.
func TestApplyMixCohort(t *testing.T) {
	defer resetRegistry()
	mx := tenant.Mix{
		Format: tenant.MixFormatVersion,
		Name:   "arr-apply-mix",
		Tenants: []tenant.TenantDef{
			{Name: "x", Workload: "bc", Threads: 1},
			{Name: "y", Workload: "srad", Threads: 2},
		},
	}
	if err := tenant.Register(mx); err != nil {
		t.Fatal(err)
	}
	sp := Spec{
		Format: SpecFormatVersion,
		Name:   "mix-arr",
		Cohorts: []Cohort{
			{Name: "pool", Mix: "arr-apply-mix", Class: "shared",
				Process: Process{Dist: DistPoisson, Rate: 3000}},
		},
	}
	sys := system.New(system.ScaledConfig().WithVariant(system.BaseCSSD))
	if err := sp.Apply(sys, 18_000, 3, 1); err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Tenants) != 2 || res.Tenants[0].Name != "pool/x" || res.Tenants[1].Name != "pool/y" {
		t.Fatalf("mix cohort groups = %+v", res.Tenants)
	}
	if res.OpenLoop == nil || len(res.OpenLoop.Classes) != 1 || res.OpenLoop.Classes[0].Name != "shared" {
		t.Fatalf("open-loop section = %+v", res.OpenLoop)
	}
	if res.OpenLoop.Classes[0].Stats.Completed == 0 {
		t.Fatal("mix cohort completed nothing")
	}
}

// TestApplyRejectsOversizedSpecs: cohort footprints must fit the
// device's logical space, exactly like tenant mixes.
func TestApplyRejectsOversizedSpecs(t *testing.T) {
	huge := workloads.Def{
		Format:         workloads.DefFormatVersion,
		Name:           "huge-arr-w",
		FootprintPages: 1 << 20,
		Regions:        []workloads.RegionDef{{Name: "r", Start: 0, Size: 1}},
		Phases: []workloads.PhaseDef{{Ops: []workloads.OpDef{
			{Op: "load", Region: "r"},
			{Op: "compute", Min: 4},
		}}},
	}
	if err := workloads.Register(huge.MustSpec()); err != nil {
		t.Fatal(err)
	}
	sp := validSpec()
	sp.Cohorts[0].Workload = "huge-arr-w"
	sys := system.New(system.ScaledConfig().WithVariant(system.BaseCSSD))
	err := sp.Apply(sys, 1000, 1, 1)
	if err == nil || !strings.Contains(err.Error(), "footprint") {
		t.Fatalf("oversized spec accepted (err=%v)", err)
	}
}
