package arrival

import (
	"math"
	"testing"

	"skybyte/internal/sim"
)

// meanTol is the relative tolerance the battery accepts between a
// sampled mean interarrival gap and the process's analytic 1/rate. It
// is deliberately tight enough that a rate miscalibration of 10% or
// more cannot pass — TestRatePerturbationIsDetected pins that property.
const meanTol = 0.02

// sampleGaps draws n interarrival gaps (seconds) from a fresh
// generator.
func sampleGaps(t *testing.T, p Process, seed uint64, n int) []float64 {
	t.Helper()
	g := NewGen(p, nil, 1, seed)
	gaps := make([]float64, n)
	prev := 0.0
	for i := range gaps {
		at := g.Next().Seconds()
		gaps[i] = at - prev
		prev = at
	}
	return gaps
}

func meanCV(gaps []float64) (mean, cv float64) {
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean = sum / float64(len(gaps))
	var sq float64
	for _, g := range gaps {
		d := g - mean
		sq += d * d
	}
	return mean, math.Sqrt(sq/float64(len(gaps))) / mean
}

// battery is the distribution set every statistical test sweeps: one
// process per supported dist, covering both bursty (k<1) and smooth
// (k>1) shapes.
var battery = []Process{
	{Dist: DistPoisson, Rate: 1_000_000},
	{Dist: DistGamma, Rate: 1_000_000, Shape: 0.5},
	{Dist: DistGamma, Rate: 1_000_000, Shape: 4},
	{Dist: DistWeibull, Rate: 1_000_000, Shape: 0.7},
	{Dist: DistWeibull, Rate: 1_000_000, Shape: 2},
	{Dist: DistDeterministic, Rate: 1_000_000},
}

// TestGoldenFirstArrivals pins the first instants of every sampler at a
// fixed seed: these values are the determinism contract — any change to
// the RNG, the draw order, or the samplers' arithmetic shows up here
// first, and with it every cached open-loop result in every store.
func TestGoldenFirstArrivals(t *testing.T) {
	golden := map[string][]sim.Time{
		"poisson":     {1152240, 2497016, 3293299, 3692261, 3932832},
		"gamma-0.5":   {32311, 2381218, 2382983, 2527782, 5555559},
		"gamma-4":     {869155, 1885608, 3040260, 4279570, 4549711},
		"weibull-0.7": {967265, 2173445, 2743997, 2956580, 3059782},
		"det":         {1000000, 2000000, 3000000, 4000000, 5000000},
	}
	cases := map[string]Process{
		"poisson":     {Dist: DistPoisson, Rate: 1_000_000},
		"gamma-0.5":   {Dist: DistGamma, Rate: 1_000_000, Shape: 0.5},
		"gamma-4":     {Dist: DistGamma, Rate: 1_000_000, Shape: 4},
		"weibull-0.7": {Dist: DistWeibull, Rate: 1_000_000, Shape: 0.7},
		"det":         {Dist: DistDeterministic, Rate: 1_000_000},
	}
	for name, p := range cases {
		g := NewGen(p, nil, 1, 42)
		for i, want := range golden[name] {
			if got := g.Next(); got != want {
				t.Errorf("%s: arrival %d = %d ps, want %d", name, i, got, want)
			}
		}
	}
}

// TestGoldenScheduledArrivals pins a scheduled sampler the same way: a
// silent window followed by a double-intensity window must place these
// exact instants.
func TestGoldenScheduledArrivals(t *testing.T) {
	g := NewGen(Process{Dist: DistPoisson, Rate: 500_000},
		[]Window{{DurUS: 10, Scale: 0}, {DurUS: 10, Scale: 2}}, 1, 7)
	want := []sim.Time{10919871, 11744603, 11769816, 11926748, 12103479}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Errorf("scheduled arrival %d = %d ps, want %d", i, got, w)
		}
	}
}

// TestSamplerMeanAndCV checks every distribution's sampled mean gap
// against 1/rate and its sampled CV against the analytic closed form
// (Process.CV) at a fixed seed and sample count.
func TestSamplerMeanAndCV(t *testing.T) {
	for _, p := range battery {
		gaps := sampleGaps(t, p, 99, 200_000)
		mean, cv := meanCV(gaps)
		wantMean := 1 / p.Rate
		if rel := math.Abs(mean-wantMean) / wantMean; rel > meanTol {
			t.Errorf("%s(k=%g): sampled mean gap %.4g s, want %.4g (rel err %.3f > %v)",
				p.Dist, p.Shape, mean, wantMean, rel, meanTol)
		}
		wantCV := p.CV()
		if math.Abs(cv-wantCV) > 0.03*(1+wantCV) {
			t.Errorf("%s(k=%g): sampled CV %.3f, want analytic %.3f", p.Dist, p.Shape, cv, wantCV)
		}
	}
}

// TestRatePerturbationIsDetected demonstrates that the battery's mean
// tolerance is discriminating: a generator whose rate parameter is
// skewed by 10% (either way) produces a sample mean that FAILS the
// meanTol gate against the declared rate. If this test ever passes a
// perturbed sampler, the battery above has gone blind.
func TestRatePerturbationIsDetected(t *testing.T) {
	declared := 1_000_000.0
	for _, skew := range []float64{0.9, 1.1} {
		for _, dist := range []string{DistPoisson, DistGamma} {
			p := Process{Dist: dist, Rate: declared * skew}
			if dist == DistGamma {
				p.Shape = 0.5
			}
			gaps := sampleGaps(t, p, 99, 200_000)
			mean, _ := meanCV(gaps)
			rel := math.Abs(mean-1/declared) / (1 / declared)
			if rel <= meanTol {
				t.Errorf("%s: 10%% rate skew (x%g) produced rel err %.4f <= %v; the mean check would not catch it",
					dist, skew, rel, meanTol)
			}
		}
	}
}

// ksDistance returns the Kolmogorov-Smirnov statistic between the
// sample and the CDF.
func ksDistance(sample []float64, cdf func(float64) float64) float64 {
	sorted := append([]float64(nil), sample...)
	// insertion-free sort via stdlib would import sort; keep it simple
	quicksort(sorted)
	n := float64(len(sorted))
	maxD := 0.0
	for i, x := range sorted {
		f := cdf(x)
		if d := math.Abs(f - float64(i)/n); d > maxD {
			maxD = d
		}
		if d := math.Abs(f - float64(i+1)/n); d > maxD {
			maxD = d
		}
	}
	return maxD
}

func quicksort(a []float64) {
	if len(a) < 2 {
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	quicksort(a[:hi+1])
	quicksort(a[lo:])
}

// TestKSDistance bounds the empirical-vs-analytic CDF distance at a
// fixed seed for the distributions with closed-form CDFs: exponential,
// Erlang-2 (gamma k=2), and weibull. The bound 0.012 sits ~3x above the
// KS 1% critical value for n=20000 (1.63/√n ≈ 0.0115 at 1%), so a
// correct sampler passes with margin while a wrong normalization or an
// off-by-one in the inversion (which shifts D by O(0.1)) fails loudly.
func TestKSDistance(t *testing.T) {
	const n = 20_000
	const bound = 0.012
	cases := []struct {
		name string
		p    Process
		cdf  func(float64) float64
	}{
		{"exponential", Process{Dist: DistPoisson, Rate: 1_000_000},
			func(x float64) float64 { return 1 - math.Exp(-x*1_000_000) }},
		{"erlang-2", Process{Dist: DistGamma, Rate: 1_000_000, Shape: 2},
			// gamma(k=2) scaled to unit mean 1/rate: X = G/(k·rate),
			// P(X<=x) = 1 - e^-u(1+u) with u = 2·rate·x.
			func(x float64) float64 {
				u := 2 * 1_000_000 * x
				return 1 - math.Exp(-u)*(1+u)
			}},
		{"weibull-2", Process{Dist: DistWeibull, Rate: 1_000_000, Shape: 2},
			// unit-mean weibull k=2: scale λ = 1/(rate·Γ(1.5)).
			func(x float64) float64 {
				lambda := 1 / (1_000_000 * math.Gamma(1.5))
				v := x / lambda
				return 1 - math.Exp(-v*v)
			}},
	}
	for _, c := range cases {
		gaps := sampleGaps(t, c.p, 1234, n)
		if d := ksDistance(gaps, c.cdf); d > bound {
			t.Errorf("%s: KS distance %.4f > %.4f at seed 1234", c.name, d, bound)
		}
	}
}

// TestDeterministicMetronome pins the CV-0 case exactly: arrivals land
// at integer multiples of the mean gap with no drift.
func TestDeterministicMetronome(t *testing.T) {
	g := NewGen(Process{Dist: DistDeterministic, Rate: 2_000_000}, nil, 1, 5)
	for i := 1; i <= 1000; i++ {
		want := sim.Time(i * 500_000) // 0.5µs in ps
		if got := g.Next(); got != want {
			t.Fatalf("arrival %d at %d ps, want %d", i, got, want)
		}
	}
}

// TestSeedIndependence: the same seed reproduces the identical
// sequence; distinct seeds diverge immediately.
func TestSeedIndependence(t *testing.T) {
	p := Process{Dist: DistPoisson, Rate: 1_000_000}
	a := NewGen(p, nil, 1, 11)
	b := NewGen(p, nil, 1, 11)
	c := NewGen(p, nil, 1, 12)
	same, diff := true, false
	for i := 0; i < 100; i++ {
		av := a.Next()
		if av != b.Next() {
			same = false
		}
		if av != c.Next() {
			diff = true
		}
	}
	if !same {
		t.Error("identical seeds diverged")
	}
	if !diff {
		t.Error("distinct seeds produced identical sequences")
	}
}

// TestRateScaleCompressesTime: doubling the intensity scale halves
// every gap exactly (the draw sequence is identical; only the mean gap
// changes), which is what makes a figopen sweep sample the same
// stochastic path at every offered intensity.
func TestRateScaleCompressesTime(t *testing.T) {
	p := Process{Dist: DistPoisson, Rate: 1_000_000}
	g1 := NewGen(p, nil, 1, 77)
	g2 := NewGen(p, nil, 2, 77)
	for i := 0; i < 1000; i++ {
		t1, t2 := g1.Next(), g2.Next()
		// Integer truncation of the float accumulation can differ by 1 ps.
		if d := t1/2 - t2; d < -1 || d > 1 {
			t.Fatalf("arrival %d: x1 at %d, x2 at %d; want halved (±1 ps)", i, t1, t2)
		}
	}
}

// TestScheduleSilentWindowPassesNothing: arrivals under a
// {silent, active} cycle must all land in active halves, and the
// long-run rate must match rate × MeanScale.
func TestScheduleSilentWindowPassesNothing(t *testing.T) {
	ws := []Window{{DurUS: 10, Scale: 0}, {DurUS: 10, Scale: 2}}
	if ms := MeanScale(ws); ms != 1 {
		t.Fatalf("MeanScale = %v, want 1", ms)
	}
	g := NewGen(Process{Dist: DistPoisson, Rate: 1_000_000}, ws, 1, 3)
	const n = 20_000
	cycle := 20 * float64(sim.Microsecond)
	var last float64
	for i := 0; i < n; i++ {
		at := float64(g.Next())
		off := math.Mod(at, cycle)
		if off < 10*float64(sim.Microsecond) {
			t.Fatalf("arrival %d at cycle offset %.0f ps lies in the silent window", i, off)
		}
		last = at
	}
	// Long-run delivered rate ≈ rate × MeanScale (= rate here).
	got := float64(n) / (last / 1e12)
	if rel := math.Abs(got-1_000_000) / 1_000_000; rel > 0.03 {
		t.Errorf("scheduled long-run rate %.0f rps, want ~1000000 (rel err %.3f)", got, rel)
	}
}

// TestScheduleRampDensity: a ramp window 1→3 must place more arrivals
// in its later half than its earlier half, in the ~2:1 ratio of the
// scale areas (1→2 vs 2→3 integrates 1.5 : 2.5).
func TestScheduleRampDensity(t *testing.T) {
	ws := []Window{{DurUS: 20, Scale: 1, EndScale: 3}}
	g := NewGen(Process{Dist: DistDeterministic, Rate: 1_000_000}, ws, 1, 1)
	const n = 40_000
	var early, late int
	cycle := 20 * float64(sim.Microsecond)
	for i := 0; i < n; i++ {
		off := math.Mod(float64(g.Next()), cycle)
		if off < cycle/2 {
			early++
		} else {
			late++
		}
	}
	ratio := float64(late) / float64(early)
	if ratio < 1.55 || ratio > 1.8 {
		t.Errorf("late/early arrival ratio %.3f, want ~2.5/1.5 ≈ 1.67", ratio)
	}
	if ms := MeanScale(ws); ms != 2 {
		t.Errorf("MeanScale of 1→3 ramp = %v, want 2", ms)
	}
}

// TestProcessValidate covers the validation matrix: shapes where they
// don't belong, missing/unknown dists listing the valid set, and
// non-positive rates.
func TestProcessValidate(t *testing.T) {
	cases := []struct {
		p      Process
		wantOK bool
	}{
		{Process{Dist: DistPoisson, Rate: 100}, true},
		{Process{Dist: DistDeterministic, Rate: 100}, true},
		{Process{Dist: DistGamma, Rate: 100, Shape: 0.5}, true},
		{Process{Dist: DistWeibull, Rate: 100, Shape: 2}, true},
		{Process{Dist: DistPoisson, Rate: 100, Shape: 2}, false},
		{Process{Dist: DistDeterministic, Rate: 100, Shape: 1}, false},
		{Process{Dist: DistGamma, Rate: 100, Shape: -1}, false},
		{Process{Dist: DistPoisson, Rate: 0}, false},
		{Process{Dist: DistPoisson, Rate: -5}, false},
		{Process{Dist: "", Rate: 100}, false},
		{Process{Dist: "pareto", Rate: 100}, false},
	}
	for i, c := range cases {
		err := c.p.validate("at")
		if (err == nil) != c.wantOK {
			t.Errorf("case %d (%+v): validate = %v, want ok=%v", i, c.p, err, c.wantOK)
		}
	}
}

// TestWindowValidation: non-positive durations, negative scales, and
// all-silent cycles are rejected.
func TestWindowValidation(t *testing.T) {
	if err := validateWindows([]Window{{DurUS: 0, Scale: 1}}, "at"); err == nil {
		t.Error("zero-duration window accepted")
	}
	if err := validateWindows([]Window{{DurUS: 5, Scale: -1}}, "at"); err == nil {
		t.Error("negative scale accepted")
	}
	if err := validateWindows([]Window{{DurUS: 5, Scale: 0}, {DurUS: 5, Scale: 0}}, "at"); err == nil {
		t.Error("all-silent schedule accepted")
	}
	if err := validateWindows([]Window{{DurUS: 5, Scale: 0}, {DurUS: 5, Scale: 1}}, "at"); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := validateWindows(nil, "at"); err != nil {
		t.Errorf("empty schedule rejected: %v", err)
	}
}
