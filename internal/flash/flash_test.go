package flash

import (
	"testing"
	"testing/quick"

	"skybyte/internal/mem"
	"skybyte/internal/sim"
)

func tinyGeo() Geometry {
	return Geometry{Channels: 2, ChipsPerChan: 1, DiesPerChip: 1, PlanesPerDie: 1, BlocksPerPlane: 4, PagesPerBlock: 8}
}

func TestGeometryMath(t *testing.T) {
	g := tinyGeo()
	if g.TotalBlocks() != 8 {
		t.Fatalf("TotalBlocks = %d", g.TotalBlocks())
	}
	if g.TotalPages() != 64 {
		t.Fatalf("TotalPages = %d", g.TotalPages())
	}
	if g.Bytes() != 64*mem.PageBytes {
		t.Fatalf("Bytes = %d", g.Bytes())
	}
	if PaperGeometry.Bytes() != 128*mem.GiB {
		t.Fatalf("paper geometry = %d bytes, want 128GiB", PaperGeometry.Bytes())
	}
}

func TestAddressingRoundTrip(t *testing.T) {
	g := tinyGeo()
	f := func(raw uint16) bool {
		ppa := uint64(raw) % g.TotalPages()
		b := g.BlockOfPPA(ppa)
		if uint64(b)*uint64(g.PagesPerBlock) > ppa {
			return false
		}
		if g.ChannelOfPPA(ppa) != g.ChannelOfBlock(b) {
			return false
		}
		return g.ChannelOfPPA(ppa) < g.Channels
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDieParallelReadTiming(t *testing.T) {
	var eng sim.Engine
	a := New(&eng, tinyGeo(), TimingULL) // 1 die per channel
	bus := a.BusPerPage
	// Two reads on channel 0 (block 0) share one die: tR then tR again.
	c1 := a.Read(0, nil)
	c2 := a.Read(1, nil)
	// One read on channel 1 (block 1 = pages 8..15) is independent.
	c3 := a.Read(8, nil)
	eng.Run()
	if c1 != 3*sim.Microsecond+bus {
		t.Fatalf("first read = %v, want tR+bus", c1)
	}
	if c2 != 6*sim.Microsecond+bus {
		t.Fatalf("second read on same die = %v, want 2*tR+bus", c2)
	}
	if c3 != 3*sim.Microsecond+bus {
		t.Fatalf("independent channel read = %v", c3)
	}
}

func TestDiesOverlapOnOneChannel(t *testing.T) {
	var eng sim.Engine
	geo := tinyGeo()
	geo.ChipsPerChan = 4 // 4 dies per channel
	a := New(&eng, geo, TimingULL)
	// Four reads on channel 0 overlap on four dies; completions are
	// staggered only by bus transfers.
	var last sim.Time
	for i := 0; i < 4; i++ {
		last = a.Read(uint64(i), nil)
	}
	eng.Run()
	if last >= 2*TimingULL.Read {
		t.Fatalf("4 reads took %v; dies did not overlap", last)
	}
}

func TestProgramDoesNotBlockBusLong(t *testing.T) {
	var eng sim.Engine
	geo := tinyGeo()
	geo.ChipsPerChan = 2
	a := New(&eng, geo, TimingULL)
	// A program occupies the bus only for the transfer; a read issued
	// right after must not wait out the 100µs program.
	a.Program(0, nil, nil)
	c := a.Read(1, nil)
	eng.Run()
	if c >= 50*sim.Microsecond {
		t.Fatalf("read behind program completed at %v; programs must not hog the bus", c)
	}
}

func TestQueueCountsAndEstimate(t *testing.T) {
	var eng sim.Engine
	a := New(&eng, tinyGeo(), TimingULL)
	a.Read(0, nil)
	a.Program(1, nil, nil)
	a.Erase(0, nil)
	c := a.Counts(0)
	if c.Reads != 1 || c.Programs != 1 || c.Erases != 1 {
		t.Fatalf("counts = %+v", c)
	}
	// Algorithm 1: tR*(1+1) + tProg*1 + tBERS*1 = 6 + 100 + 1000 µs.
	want := 2*TimingULL.Read + TimingULL.Program + TimingULL.Erase
	if got := a.EstimateDelay(0); got != want {
		t.Fatalf("EstimateDelay = %v, want %v", got, want)
	}
	eng.Run()
	c = a.Counts(0)
	if c.Reads != 0 || c.Programs != 0 || c.Erases != 0 {
		t.Fatalf("counts after drain = %+v", c)
	}
	if a.EstimateDelay(0) != TimingULL.Read {
		t.Fatal("estimate on idle channel should be a single tR")
	}
}

// Property: the Algorithm 1 estimate is the FIFO upper bound — the actual
// die-parallel completion of a read behind a random backlog never exceeds
// it (plus bus transfers, which the formula does not count).
func TestEstimateIsConservativeBound(t *testing.T) {
	f := func(ops []uint8) bool {
		var eng sim.Engine
		a := New(&eng, tinyGeo(), TimingULL)
		n := len(ops)
		if n > 20 {
			n = 20
		}
		for _, op := range ops[:n] {
			switch op % 3 {
			case 0:
				a.Read(0, nil)
			case 1:
				a.Program(0, nil, nil)
			default:
				a.Erase(0, nil)
			}
		}
		est := a.EstimateDelay(0)
		slack := sim.Time(n+1) * a.BusPerPage
		actual := a.Read(2, nil)
		eng.Run()
		return actual <= est+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateFormula(t *testing.T) {
	var eng sim.Engine
	a := New(&eng, tinyGeo(), TimingULL)
	a.Read(0, nil)
	a.Program(1, nil, nil)
	a.Erase(0, nil)
	// Algorithm 1 verbatim: tR*(1+1) + tProg*1 + tBERS*1.
	want := 2*TimingULL.Read + TimingULL.Program + TimingULL.Erase
	if got := a.EstimateDelay(0); got != want {
		t.Fatalf("EstimateDelay = %v, want %v", got, want)
	}
}

func TestDataPath(t *testing.T) {
	var eng sim.Engine
	a := New(&eng, tinyGeo(), TimingULL)
	a.TrackData = true
	payload := make([]byte, mem.PageBytes)
	payload[0], payload[4095] = 0xAB, 0xCD
	a.Program(5, payload, nil)
	var got []byte
	a.Read(5, func(d []byte) { got = d })
	eng.Run()
	if got == nil || got[0] != 0xAB || got[4095] != 0xCD {
		t.Fatal("read did not return programmed data")
	}
	// Erase block 0 (pages 0..7) drops the payload.
	a.Erase(0, nil)
	eng.Run()
	if a.PeekData(5) != nil {
		t.Fatal("erase did not drop page data")
	}
}

func TestStatsAndUtilization(t *testing.T) {
	var eng sim.Engine
	a := New(&eng, tinyGeo(), TimingULL)
	a.Read(0, nil)
	a.Program(0, nil, nil)
	a.Erase(1, nil) // channel 1
	eng.Run()
	s := a.Stats()
	if s.Reads != 1 || s.Programs != 1 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
	wantBusy := TimingULL.Read + TimingULL.Program + TimingULL.Erase
	if s.BusyTime != wantBusy {
		t.Fatalf("BusyTime = %v, want %v", s.BusyTime, wantBusy)
	}
	if u := a.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestTimingClassesOrdered(t *testing.T) {
	// Sanity: faster classes really are faster (used by Fig. 22).
	if !(TimingULL.Read < TimingULL2.Read && TimingULL2.Read < TimingSLC.Read && TimingSLC.Read < TimingMLC.Read) {
		t.Fatal("read latency ordering violated")
	}
}

func TestEraseOutOfRangePanics(t *testing.T) {
	var eng sim.Engine
	a := New(&eng, tinyGeo(), TimingULL)
	defer func() {
		if recover() == nil {
			t.Fatal("erase beyond geometry should panic")
		}
	}()
	a.Erase(999, nil)
}
