// Package flash models the NAND flash array inside the CXL-SSD: the
// channel/chip/die/plane/block/page organisation of Table II, the per-class
// read/program/erase timings of Table IV, and per-channel FIFO service
// queues whose occupancy counters feed the paper's Algorithm 1 latency
// estimator.
//
// The service model matches the paper's: "the requests in the channel queue
// will be served in FIFO order", so the latency of a request is the sum of
// the service times of everything ahead of it. Garbage-collection traffic is
// enqueued on the same queues and therefore blocks demand requests exactly
// as §II-C describes.
package flash

import (
	"fmt"

	"skybyte/internal/mem"
	"skybyte/internal/sim"
)

// Timing holds NAND operation latencies (Table IV).
type Timing struct {
	Read    sim.Time // tR
	Program sim.Time // tProg
	Erase   sim.Time // tBERS
}

// NAND timing classes evaluated in the paper (Table IV).
var (
	TimingULL  = Timing{Read: 3 * sim.Microsecond, Program: 100 * sim.Microsecond, Erase: 1000 * sim.Microsecond}  // Samsung Z-NAND
	TimingULL2 = Timing{Read: 4 * sim.Microsecond, Program: 75 * sim.Microsecond, Erase: 850 * sim.Microsecond}    // Toshiba XL-Flash
	TimingSLC  = Timing{Read: 25 * sim.Microsecond, Program: 200 * sim.Microsecond, Erase: 1500 * sim.Microsecond} //
	TimingMLC  = Timing{Read: 50 * sim.Microsecond, Program: 600 * sim.Microsecond, Erase: 3000 * sim.Microsecond} //
)

// Geometry describes the physical organisation.
type Geometry struct {
	Channels       int
	ChipsPerChan   int
	DiesPerChip    int
	PlanesPerDie   int
	BlocksPerPlane int
	PagesPerBlock  int
}

// PaperGeometry is Table II's organisation: 16 channels, 8 chips/channel,
// 8 dies/chip, 1 plane/die, 128 blocks/plane, 256 pages/block, 4 KB pages
// (128 GB total).
var PaperGeometry = Geometry{Channels: 16, ChipsPerChan: 8, DiesPerChip: 8, PlanesPerDie: 1, BlocksPerPlane: 128, PagesPerBlock: 256}

// TotalBlocks returns the number of erase blocks.
func (g Geometry) TotalBlocks() int {
	return g.Channels * g.ChipsPerChan * g.DiesPerChip * g.PlanesPerDie * g.BlocksPerPlane
}

// TotalPages returns the number of flash pages.
func (g Geometry) TotalPages() uint64 {
	return uint64(g.TotalBlocks()) * uint64(g.PagesPerBlock)
}

// Bytes returns the raw capacity in bytes.
func (g Geometry) Bytes() uint64 { return g.TotalPages() * mem.PageBytes }

// BlockOfPPA returns the erase-block index containing physical page ppa.
func (g Geometry) BlockOfPPA(ppa uint64) uint32 { return uint32(ppa / uint64(g.PagesPerBlock)) }

// ChannelOfBlock returns the channel a block belongs to. Blocks are striped
// round-robin so sequential block allocation exploits channel parallelism.
func (g Geometry) ChannelOfBlock(block uint32) int { return int(block) % g.Channels }

// ChannelOfPPA returns the channel serving physical page ppa.
func (g Geometry) ChannelOfPPA(ppa uint64) int { return g.ChannelOfBlock(g.BlockOfPPA(ppa)) }

// OpKind distinguishes flash operations.
type OpKind uint8

// Flash operation kinds.
const (
	OpRead OpKind = iota
	OpProgram
	OpErase
)

// QueueCounts reports the pending operations on one channel, the inputs to
// the paper's Algorithm 1.
type QueueCounts struct {
	Reads, Programs, Erases int
}

// Stats aggregates array-level activity.
type Stats struct {
	Reads    uint64
	Programs uint64
	Erases   uint64
	BusyTime sim.Time // summed across channels
}

type channel struct {
	busFree sim.Time
	dies    []sim.Time // per-die free time
	counts  QueueCounts
}

// DefaultBusPerPage is the channel-bus occupancy of one 4 KB page
// transfer. Die operations (tR/tProg/tBERS) proceed in parallel across the
// channel's chips/dies/planes; only the transfer serialises on the bus —
// the behaviour that lets programs overlap reads on the same channel, as
// in SimpleSSD's device model (see DESIGN.md §1).
const DefaultBusPerPage = 400 * sim.Nanosecond

// Array is the event-driven flash array.
type Array struct {
	Eng *sim.Engine
	Geo Geometry
	Tim Timing
	// BusPerPage is the channel-bus time per page transfer.
	BusPerPage sim.Time

	chans []channel
	stats Stats

	// TrackData enables a functional data path: programs store page
	// payloads, reads return them, erases drop them. Perf runs leave it off.
	TrackData bool
	data      map[uint64][]byte
}

// Typed completion handlers: A0 carries the channel index, P1 the array,
// P2 the optional caller callback — so steady-state (non-TrackData) flash
// traffic schedules without allocating. Registered at init per the
// sim.RegisterHandler contract.
var (
	hReadDone  sim.HandlerID
	hProgDone  sim.HandlerID
	hEraseDone sim.HandlerID
)

func init() {
	hReadDone = sim.RegisterHandler(func(a0 uint64, p1, p2 any) {
		a := p1.(*Array)
		a.chans[a0].counts.Reads--
		if p2 != nil {
			p2.(func(data []byte))(nil)
		}
	})
	hProgDone = sim.RegisterHandler(func(a0 uint64, p1, p2 any) {
		a := p1.(*Array)
		a.chans[a0].counts.Programs--
		if p2 != nil {
			p2.(func())()
		}
	})
	hEraseDone = sim.RegisterHandler(func(a0 uint64, p1, p2 any) {
		a := p1.(*Array)
		a.chans[a0].counts.Erases--
		if p2 != nil {
			p2.(func())()
		}
	})
}

// New builds an array on the given engine.
func New(eng *sim.Engine, geo Geometry, tim Timing) *Array {
	a := &Array{Eng: eng, Geo: geo, Tim: tim, BusPerPage: DefaultBusPerPage,
		chans: make([]channel, geo.Channels), data: map[uint64][]byte{}}
	dies := geo.ChipsPerChan * geo.DiesPerChip * geo.PlanesPerDie
	if dies < 1 {
		dies = 1
	}
	for i := range a.chans {
		a.chans[i].dies = make([]sim.Time, dies)
	}
	return a
}

// Stats returns a copy of the accumulated statistics.
func (a *Array) Stats() Stats { return a.stats }

// Counts returns the pending-operation counters for a channel.
func (a *Array) Counts(ch int) QueueCounts { return a.chans[ch].counts }

// QueuedOps returns the total operations (reads + programs + erases)
// outstanding across every channel queue — the array-wide queue depth
// a telemetry probe samples.
func (a *Array) QueuedOps() int {
	n := 0
	for ch := range a.chans {
		c := a.chans[ch].counts
		n += c.Reads + c.Programs + c.Erases
	}
	return n
}

// EstimateDelay implements the queue-sum latency estimate of Algorithm 1
// for a new read arriving on channel ch:
//
//	est = tR*(nRead+1) + tProg*nProgram + tBERS*nErase
//
// This is the paper's conservative FIFO model; the actual service model
// overlaps die operations, so controller code that knows the enqueue-time
// completion should prefer that (the paper's controller also "sums the
// latency of all requests in the queue" — with die parallelism, the sum is
// the computed completion time).
func (a *Array) EstimateDelay(ch int) sim.Time {
	c := a.chans[ch].counts
	return a.Tim.Read*sim.Time(c.Reads+1) + a.Tim.Program*sim.Time(c.Programs) + a.Tim.Erase*sim.Time(c.Erases)
}

// QueueBusyUntil returns when the channel fully drains: the latest free
// time across its bus and dies.
func (a *Array) QueueBusyUntil(ch int) sim.Time {
	c := &a.chans[ch]
	t := c.busFree
	for _, d := range c.dies {
		if d > t {
			t = d
		}
	}
	return t
}

// earliestDie returns the index of the die that frees first.
func (c *channel) earliestDie() int {
	best, bt := 0, c.dies[0]
	for i, d := range c.dies {
		if d < bt {
			best, bt = i, d
		}
	}
	return best
}

// Read enqueues a page read on ppa's channel and returns its predicted
// completion time. The die senses for tR (in parallel with other dies),
// then the page crosses the channel bus. done (optional) fires at
// completion with the page payload (nil unless TrackData); the payload is
// snapshotted at enqueue time — enqueue order is service order per die, so
// the snapshot is what the read physically observes.
func (a *Array) Read(ppa uint64, done func(data []byte)) sim.Time {
	ch := a.Geo.ChannelOfPPA(ppa)
	c := &a.chans[ch]
	a.stats.Reads++
	c.counts.Reads++
	snap := a.pageData(ppa)

	die := c.earliestDie()
	dieStart := sim.Max(a.Eng.Now(), c.dies[die])
	dieEnd := dieStart + a.Tim.Read
	c.dies[die] = dieEnd
	busStart := sim.Max(dieEnd, c.busFree)
	end := busStart + a.BusPerPage
	c.busFree = end
	a.stats.BusyTime += a.Tim.Read

	if a.TrackData {
		// The payload snapshot must ride in a closure; the typed fast path
		// below only covers the nil-payload perf configuration.
		a.Eng.At(end, func() {
			c.counts.Reads--
			if done != nil {
				done(snap)
			}
		})
		return end
	}
	var cb any
	if done != nil {
		cb = done
	}
	a.Eng.AtH(end, hReadDone, uint64(ch), a, cb)
	return end
}

// Program enqueues a page program and returns its predicted completion:
// the page crosses the bus, then the die programs for tProg in parallel
// with other dies. data is retained only when TrackData.
func (a *Array) Program(ppa uint64, data []byte, done func()) sim.Time {
	ch := a.Geo.ChannelOfPPA(ppa)
	c := &a.chans[ch]
	a.stats.Programs++
	c.counts.Programs++
	if a.TrackData {
		buf := make([]byte, mem.PageBytes)
		copy(buf, data)
		a.data[ppa] = buf
	}
	busStart := sim.Max(a.Eng.Now(), c.busFree)
	busEnd := busStart + a.BusPerPage
	c.busFree = busEnd
	die := c.earliestDie()
	dieStart := sim.Max(busEnd, c.dies[die])
	end := dieStart + a.Tim.Program
	c.dies[die] = end
	a.stats.BusyTime += a.Tim.Program

	var cb any
	if done != nil {
		cb = done
	}
	a.Eng.AtH(end, hProgDone, uint64(ch), a, cb)
	return end
}

// Erase enqueues a block erase (die-only; no bus transfer) and returns its
// predicted completion.
func (a *Array) Erase(block uint32, done func()) sim.Time {
	if int(block) >= a.Geo.TotalBlocks() {
		panic(fmt.Sprintf("flash: erase of block %d beyond %d", block, a.Geo.TotalBlocks()))
	}
	ch := a.Geo.ChannelOfBlock(block)
	c := &a.chans[ch]
	a.stats.Erases++
	c.counts.Erases++
	if a.TrackData {
		first := uint64(block) * uint64(a.Geo.PagesPerBlock)
		for p := first; p < first+uint64(a.Geo.PagesPerBlock); p++ {
			delete(a.data, p)
		}
	}
	die := c.earliestDie()
	end := sim.Max(a.Eng.Now(), c.dies[die]) + a.Tim.Erase
	c.dies[die] = end
	a.stats.BusyTime += a.Tim.Erase

	var cb any
	if done != nil {
		cb = done
	}
	a.Eng.AtH(end, hEraseDone, uint64(ch), a, cb)
	return end
}

func (a *Array) pageData(ppa uint64) []byte {
	if !a.TrackData {
		return nil
	}
	return a.data[ppa]
}

// PeekData returns the stored payload of a physical page (tests only).
func (a *Array) PeekData(ppa uint64) []byte { return a.pageData(ppa) }

// Utilization returns the fraction of die-time spent busy since t=0.
func (a *Array) Utilization() float64 {
	el := a.Eng.Now()
	if el == 0 {
		return 0
	}
	dies := a.Geo.Channels * len(a.chans[0].dies)
	return float64(a.stats.BusyTime) / float64(int64(el)*int64(dies))
}
