// Package skybyte is a full-system reproduction of "SkyByte: Architecting
// an Efficient Memory-Semantic CXL-based SSD with OS and Hardware
// Co-design" (HPCA 2025).
//
// It simulates, end to end, a multi-core host running software threads over
// a CXL.mem link to a flash SSD, and implements the paper's three
// mechanisms — the coordinated context switch on device-predicted long
// delays, the cacheline-granular write log with a page-granular data cache
// in the SSD DRAM, and adaptive hot-page promotion to host DRAM — alongside
// the baselines the paper compares against (Base-CSSD, TPP-style migration,
// an AstriFlash-style host page cache, and an ideal DRAM-only machine).
//
// Quick start:
//
//	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
//	w, _ := skybyte.WorkloadByName("ycsb")
//	res := skybyte.Run(cfg, w, 24, 16_000, 1)
//	fmt.Println(res.ExecTime, res.AMAT.Mean())
//
// The experiments API regenerates every table and figure of the paper's
// evaluation; see NewExperiments and EXPERIMENTS.md. RunAll executes the
// whole campaign as one de-duplicated batch across a worker pool sized
// by ExperimentOptions.Parallelism — the tables are byte-identical at
// any parallelism:
//
//	opt := skybyte.DefaultExperimentOptions()
//	opt.Parallelism = runtime.GOMAXPROCS(0)
//	for _, tab := range skybyte.RunAll(opt) {
//		fmt.Println(tab.String())
//	}
package skybyte

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"skybyte/internal/arrival"
	"skybyte/internal/experiments"
	"skybyte/internal/fleet"
	"skybyte/internal/stats"
	"skybyte/internal/store"
	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/trace"
	"skybyte/internal/traceimport"
	"skybyte/internal/workloads"
)

// Config is the full-system configuration (Table II plus the artifact's
// knobs). Obtain one from ScaledConfig or PaperConfig, then apply
// WithVariant.
type Config = system.Config

// Variant names a design point from the paper's evaluation.
type Variant = system.Variant

// The design points of Figs. 14 and 23.
const (
	DRAMOnly      = system.DRAMOnly
	BaseCSSD      = system.BaseCSSD
	SkyByteC      = system.SkyByteC
	SkyByteP      = system.SkyByteP
	SkyByteW      = system.SkyByteW
	SkyByteCP     = system.SkyByteCP
	SkyByteWP     = system.SkyByteWP
	SkyByteFull   = system.SkyByteFull
	SkyByteCT     = system.SkyByteCT
	SkyByteWCT    = system.SkyByteWCT
	AstriFlashCXL = system.AstriFlashCXL
)

// Variants lists the Fig. 14 comparison set in the paper's order.
func Variants() []Variant { return append([]Variant(nil), system.AllVariants...) }

// Result carries the measurements of one run (execution time, boundedness,
// AMAT components, request breakdown, flash traffic, migrations, ...).
type Result = system.Result

// System is a fully wired simulated machine for callers that want to drive
// runs manually (custom streams, incremental stepping).
type System = system.System

// DeviceResult is one device's share of a fleet run's accounting; it
// rides in Result.Devices when Config.Devices >= 1 and its summable
// counters add up exactly to the fleet totals (DESIGN.md §9).
type DeviceResult = system.DeviceResult

// MaxFleetDevices is the largest supported Config.Devices.
const MaxFleetDevices = fleet.MaxDevices

// FleetPolicyNames lists the valid Config.Placement policies (the
// -placement flag's accept set): striped, capacity, hotcold.
func FleetPolicyNames() []string { return fleet.PolicyNames() }

// ValidateFleet checks a device-count/placement pair before a run the
// way the CLIs do: an unknown value errors listing the valid set.
func ValidateFleet(devices int, placement string) error { return fleet.Validate(devices, placement) }

// Workload describes one Table I benchmark and generates its instruction
// streams.
type Workload = workloads.Spec

// Stream is a lazily generated instruction trace; custom workloads
// implement it and pass it to (*System).AddThread.
type Stream = trace.Stream

// Record is one instruction-trace record.
type Record = trace.Record

// ScaledConfig returns the evaluation machine at 1/64 of Table II's
// capacities (identical ratios; see DESIGN.md §1).
func ScaledConfig() Config { return system.ScaledConfig() }

// PaperConfig returns Table II verbatim (128 GB flash, 512 MB SSD DRAM).
func PaperConfig() Config { return system.PaperConfig() }

// Workloads returns the seven Table I benchmarks.
func Workloads() []Workload { return workloads.Table1() }

// ExtraWorkloads returns the extension scenarios beyond Table I
// (scan-heavy, log-append, graph500), each composed from the
// declarative workload primitives — see WORKLOADS.md.
func ExtraWorkloads() []Workload { return workloads.Extras() }

// WorkloadByName resolves any known workload: the Table I seven (bc,
// bfs-dense, dlrm, radix, srad, tpcc, ycsb), the extension scenarios,
// and anything registered via WorkloadFromFile. Unknown names error
// with the full valid list.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// WorkloadNames lists every resolvable workload name: Table I in paper
// order, then the extension scenarios, then file-registered workloads.
func WorkloadNames() []string { return workloads.Names() }

// WorkloadFromFile loads a workload from a file — a declarative JSON
// definition or a recorded binary trace (both documented in
// WORKLOADS.md) — and registers it, so it resolves by name everywhere
// a built-in does: WorkloadByName, ExperimentOptions.Workloads, and
// the CLIs' -workload flags. Register before building harnesses: the
// campaign fingerprint snapshots the workload registry, which is how a
// persistent result store distinguishes runs made with different
// definitions of the same name.
func WorkloadFromFile(path string) (Workload, error) { return workloads.RegisterFile(path) }

// ImportTrace converts an externally produced trace — spec is
// "<format>:<path>", formats listed by ImportFormats — and registers
// it as a replayable workload named "trace:<format>:<source>", so a
// published recording joins campaigns exactly like one of our own.
// The conversion is deterministic and the registered spec's source
// identity folds the converted file's digest (which covers the source
// file's sha256 via the provenance meta), so persistent result stores
// re-cold exactly the design points replaying this import when the
// source or the converter changes. For large traces, prefer recording
// the conversion to a .trc once (skybyte-trace -import ... -record)
// and loading that file: the block-compressed container then replays
// with bounded memory instead of being held in RAM.
func ImportTrace(spec string) (Workload, error) {
	format, path, err := traceimport.ParseSpec(spec)
	if err != nil {
		return Workload{}, err
	}
	return traceimport.RegisterWorkload(format, path)
}

// ImportFormats lists the external trace formats ImportTrace converts
// (champsim, damon, cachegrind — see WORKLOADS.md for each format's
// shape and caveats).
func ImportFormats() []string { return traceimport.Formats() }

// NewSystem wires a machine from cfg.
func NewSystem(cfg Config) *System { return system.New(cfg) }

// Run executes one workload on one configuration: threads streams of
// instrPerThread instructions each, all seeded deterministically.
func Run(cfg Config, w Workload, threads int, instrPerThread uint64, seed uint64) *Result {
	sys := system.New(cfg)
	for i := 0; i < threads; i++ {
		sys.AddThread(w.Stream(i, seed), instrPerThread)
	}
	return sys.Run()
}

// Mix assigns different workloads to named thread groups — the
// multi-tenant run specification (WORKLOADS.md documents the JSON
// schema). Obtain one from MixByName, MixFromFile, or a literal.
type Mix = tenant.Mix

// MixTenant is one thread group of a Mix.
type MixTenant = tenant.TenantDef

// TenantResult is one tenant group's share of a mixed run's Result
// (Result.Tenants): per-group execution time, boundedness, request
// breakdown, AMAT, context-switch and write-log accounting.
type TenantResult = system.TenantResult

// JainIndex returns Jain's fairness index over xs — (Σx)²/(n·Σx²),
// 1 when every tenant fares equally, 1/n when one tenant receives
// everything (zero shares count toward n). Apply it to per-tenant
// slowdowns or normalized throughputs of a mixed run.
func JainIndex(xs []float64) float64 { return stats.JainIndex(xs) }

// MaxMinRatio returns max/min over the positive values of xs — the
// worst-to-best disparity between co-located tenants (1 = even).
func MaxMinRatio(xs []float64) float64 { return stats.MaxMinRatio(xs) }

// MixByName resolves any known mix: the built-in interference
// pairings (graph-vs-log, scan-vs-point) and anything registered via
// MixFromFile. Unknown names error with the full valid list.
func MixByName(name string) (Mix, error) { return tenant.ByName(name) }

// MixNames lists every resolvable mix name, built-ins first.
func MixNames() []string { return tenant.Names() }

// MixFromFile loads a multi-tenant mix from a versioned JSON file and
// registers it, so it resolves by name everywhere a built-in mix does:
// MixByName, ExperimentOptions.Mixes (the figmix fairness table), and
// the CLIs' -mix flags. Register before building harnesses so plans
// resolve it.
func MixFromFile(path string) (Mix, error) { return tenant.RegisterFile(path) }

// RunMix executes one multi-tenant simulation: every tenant group of m
// runs its own workload on its declared thread range, co-located on
// one machine, with totalInstr total instructions split across threads
// per the mix's intensities. The Result's Tenants slice attributes the
// measurements per group; Result.Tenants sums to the whole-system
// totals exactly.
func RunMix(cfg Config, m Mix, totalInstr uint64, seed uint64) (*Result, error) {
	sys := system.New(cfg)
	if err := m.Apply(sys, totalInstr, seed); err != nil {
		return nil, err
	}
	return sys.Run(), nil
}

// Arrival is an open-loop traffic specification: named client cohorts,
// each pacing its threads with a sampled arrival process (Poisson,
// Gamma, Weibull, or deterministic, optionally under a time-varying
// intensity schedule) and reporting into an SLO class (WORKLOADS.md
// documents the JSON schema). Obtain one from ArrivalByName,
// ArrivalFromFile, or a literal.
type Arrival = arrival.Spec

// ArrivalCohort is one client cohort of an Arrival spec.
type ArrivalCohort = arrival.Cohort

// ArrivalProcess is a cohort's interarrival distribution.
type ArrivalProcess = arrival.Process

// ArrivalWindow is one piecewise intensity window of a cohort's
// time-varying schedule.
type ArrivalWindow = arrival.Window

// OpenLoopResult is the per-SLO-class accounting of an open-loop run
// (Result.OpenLoop): sojourn-latency and queue-delay percentiles,
// admitted/completed counts, and goodput per class plus a grand total.
type OpenLoopResult = system.OpenLoopResult

// SLOClassResult is one SLO class's share of an OpenLoopResult.
type SLOClassResult = system.SLOClassResult

// ArrivalByName resolves any known arrival spec: the built-ins
// (open-steady, open-burst) and anything registered via
// ArrivalFromFile. Unknown names error with the full valid list.
func ArrivalByName(name string) (Arrival, error) { return arrival.ByName(name) }

// ArrivalNames lists every resolvable arrival-spec name, built-ins
// first.
func ArrivalNames() []string { return arrival.Names() }

// ArrivalFromFile loads an arrival spec from a versioned JSON file and
// registers it, so it resolves by name everywhere a built-in does:
// ArrivalByName, ExperimentOptions.Arrivals (the figopen open-loop
// table), and the CLIs' -arrival flags. Register before building
// harnesses so plans resolve it.
func ArrivalFromFile(path string) (Arrival, error) { return arrival.RegisterFile(path) }

// RunArrival executes one open-loop simulation: every cohort of a runs
// its threads paced by sampled arrival instants, with every cohort rate
// multiplied by rateScale (0 means 1) and totalInstr total instructions
// split evenly across threads. The Result's OpenLoop section attributes
// sojourn latency, queue delay, and goodput per SLO class; the per-class
// splits sum to OpenLoop.Total exactly.
func RunArrival(cfg Config, a Arrival, totalInstr uint64, seed uint64, rateScale float64) (*Result, error) {
	sys := system.New(cfg)
	if err := a.Apply(sys, totalInstr, seed, rateScale); err != nil {
		return nil, err
	}
	return sys.Run(), nil
}

// ExperimentOptions scope an experiment campaign: Parallelism
// (simulations in flight at once; 0 = GOMAXPROCS), an optional
// Progress callback, and the persistence/sharding knobs — CacheDir
// roots a content-addressed result store so completed design points
// survive across invocations and machines, Shard/ShardCount split the
// de-duplicated campaign into deterministic slices, and FromCache
// renders tables exclusively from the store.
type ExperimentOptions = experiments.Options

// Experiments regenerates the paper's tables and figures.
type Experiments = experiments.Harness

// ExperimentTable is one reproduced figure or table.
type ExperimentTable = experiments.Table

// DefaultExperimentOptions sizes a campaign to run a full sweep in minutes.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// NewExperiments builds an experiment harness; its Fig* and Table* methods
// each regenerate one element of the paper's evaluation.
func NewExperiments(opt ExperimentOptions) *Experiments { return experiments.NewHarness(opt) }

// RunAll is the campaign entry point: it plans every figure and table of
// the paper's evaluation, de-duplicates the design points, executes them
// once across a worker pool of opt.Parallelism simulations (0 =
// GOMAXPROCS), and returns the tables in paper order. Output is
// byte-identical at any parallelism; only wall-clock changes. With
// opt.CacheDir set, executed results persist in a content-addressed
// store and later invocations recall them instead of re-simulating —
// a warm campaign performs zero simulations and renders the same bytes.
func RunAll(opt ExperimentOptions) []ExperimentTable { return NewExperiments(opt).All() }

// RunShard executes one deterministic slice of the full campaign —
// the opt.Shard-th (0-based) of opt.ShardCount — persisting results
// into opt.CacheDir (required) and rendering nothing. Every process
// planning the same options computes identical slice boundaries, so a
// sweep splits across machines or CI jobs with no coordination beyond
// (shard, count) and a shared or later-merged store directory. Returns
// the executed and total design-point counts.
func RunShard(opt ExperimentOptions) (executed, total int, err error) {
	return NewExperiments(opt).RunShard(context.Background())
}

// RunAllFromCache renders the full campaign exclusively from the
// result store at opt.CacheDir — the merge path after sharding: a
// design point missing from the store is an error, never a silent
// re-simulation, so the rendered tables are exactly the shards' work.
func RunAllFromCache(opt ExperimentOptions) ([]ExperimentTable, error) {
	if opt.CacheDir == "" {
		return nil, errors.New("skybyte: RunAllFromCache requires ExperimentOptions.CacheDir")
	}
	opt.FromCache = true
	return NewExperiments(opt).AllErr(context.Background())
}

// CampaignFingerprint returns the external cache identity of a
// campaign: the result codec version plus a digest of the resolved
// base configuration, the workload seed, and the full workload, mix,
// and arrival-spec registries. It is deliberately *coarser* than the store's own
// invalidation — the store re-keys per design point via source-folded
// spec keys (DESIGN.md §2.1), so an edited workload only re-simulates
// the entries that use it — but an external cache (e.g. CI's
// actions/cache) snapshots whole directories, and its key should
// rotate whenever any input changed so the refreshed store is
// re-uploaded. Pair it with a prefix restore key to keep the
// still-warm entries of the previous snapshot.
func CampaignFingerprint(opt ExperimentOptions) string {
	opt.CacheDir, opt.FromCache = "", false // no store side effects
	h := NewExperiments(opt)
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%s",
		store.Fingerprint(h.Opt.BaseConfig, h.Opt.Seed),
		workloads.RegistryFingerprint(),
		tenant.RegistryFingerprint(),
		arrival.RegistryFingerprint())))
	return fmt.Sprintf("v%d-%s", system.ResultCodecVersion, hex.EncodeToString(sum[:]))
}
